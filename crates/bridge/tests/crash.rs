//! Crash-recovery tests for the durable [`DataflowOptimizer`]: a victim
//! optimizer is checkpointed (and WAL-logged) at a random point of a
//! random delta sequence, "crashed" (dropped), and recovered in a fresh
//! instance — which must land byte-identical to an oracle that never
//! crashed. Corruption variants seed damage into the on-disk files and
//! require detection plus graceful degradation, never a panic and never
//! a silently wrong plan.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use reopt_bridge::{AuditMode, DataflowOptimizer, RecoveryPath};
use reopt_catalog::{Catalog, ColumnStats, TableBuilder, TableStats};
use reopt_cost::ParamDelta;
use reopt_datalog::{Multiset, Tuple};
use reopt_expr::{EdgeId, LeafId, QuerySpec};

/// Deterministic description of a random query instance (same shape as
/// the differential property suite in `props.rs`).
#[derive(Clone, Debug)]
struct QueryGen {
    rows: Vec<u8>,
    indexed: Vec<bool>,
    parent: Vec<u8>,
    cycle: bool,
}

fn query_gen(max_leaves: usize) -> impl Strategy<Value = QueryGen> {
    (2..=max_leaves).prop_flat_map(|n| {
        (
            proptest::collection::vec(1u8..=5, n),
            proptest::collection::vec(any::<bool>(), n),
            proptest::collection::vec(any::<u8>(), n - 1),
            any::<bool>(),
        )
            .prop_map(|(rows, indexed, parent, cycle)| QueryGen {
                rows,
                indexed,
                parent,
                cycle,
            })
    })
}

fn build(gen: &QueryGen) -> (Catalog, QuerySpec) {
    let n = gen.rows.len();
    let mut c = Catalog::new();
    for i in 0..n {
        let rows = 10f64.powi(gen.rows[i] as i32);
        let name = format!("t{i}");
        let indexed = gen.indexed[i];
        c.add_table(
            |id| {
                let mut b = TableBuilder::new(&name).int_col("a").int_col("b");
                if indexed {
                    b = b.index_on("a");
                }
                b.build(id)
            },
            TableStats {
                row_count: rows,
                columns: vec![ColumnStats::uniform_key(rows); 2],
            },
        );
    }
    let mut b = QuerySpec::builder("crash");
    let leaves: Vec<_> = (0..n).map(|i| b.leaf(&c, &format!("t{i}"))).collect();
    for i in 1..n {
        let p = (gen.parent[i - 1] as usize) % i;
        b.join(&c, leaves[p], "b", leaves[i], "a");
    }
    if gen.cycle && n > 2 {
        b.join(&c, leaves[n - 1], "b", leaves[0], "a");
    }
    (c, b.build())
}

fn deltas_for(q: &QuerySpec, raw: (u8, u8, u8)) -> Vec<ParamDelta> {
    let (kind, idx, mag) = raw;
    let factor = 2f64.powi((mag as i32 % 7) - 3);
    vec![match kind % 3 {
        0 if !q.edges.is_empty() => {
            ParamDelta::EdgeSelectivity(EdgeId(idx as u32 % q.edges.len() as u32), factor)
        }
        1 => ParamDelta::LeafCardinality(LeafId(idx as u32 % q.n_leaves()), factor),
        _ => ParamDelta::LeafScanCost(LeafId(idx as u32 % q.n_leaves()), factor),
    }]
}

fn sink_sorted(sink: &Multiset) -> Vec<(Tuple, i64)> {
    let mut v: Vec<(Tuple, i64)> = sink.iter().map(|(t, c)| (t.clone(), c)).collect();
    v.sort();
    v
}

fn assert_sinks_match(a: &DataflowOptimizer, b: &DataflowOptimizer, what: &str) {
    for name in ["SearchSpace", "BestCost", "BestPlan"] {
        assert!(
            !a.sink(name).has_negative_counts(),
            "{what}: residual negative counts in {name}"
        );
        assert_eq!(
            sink_sorted(a.sink(name)),
            sink_sorted(b.sink(name)),
            "{what}: sink {name} diverged"
        );
    }
}

/// A fresh, unique durable directory under the system temp dir.
fn fresh_dir(label: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "reopt-bridge-crash-{label}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The deterministic 5-leaf chain the benches use, with a fixed delta
/// schedule — the fixture behind the plain (non-property) tests.
fn chain5() -> (Catalog, QuerySpec) {
    build(&QueryGen {
        rows: vec![2, 4, 3, 5, 1],
        indexed: vec![true, false, true, false, true],
        parent: vec![0, 1, 2, 3],
        cycle: false,
    })
}

fn chain5_batches(q: &QuerySpec) -> Vec<Vec<ParamDelta>> {
    vec![
        deltas_for(q, (0, 1, 6)),
        deltas_for(q, (1, 3, 1)),
        deltas_for(q, (2, 0, 5)),
        deltas_for(q, (0, 2, 2)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The bridge lockstep variant of the substrate crash suite: a
    /// victim checkpoints after a random prefix of a random delta
    /// sequence, keeps going (those batches reach only the WAL), and
    /// crashes. Recovery must restore + replay to the exact state of an
    /// uninterrupted oracle — best cost, extracted plan, and every
    /// materialized sink with counts — and then resume incrementally in
    /// lockstep.
    #[test]
    fn recovered_optimizer_matches_the_uninterrupted_oracle(
        gen in query_gen(5),
        seq in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..8),
        ckpt_sel in any::<u8>(),
        resume in (any::<u8>(), any::<u8>(), any::<u8>()),
    ) {
        let (c, q) = build(&gen);
        let dir = fresh_dir("lockstep");
        let ckpt_at = ckpt_sel as usize % (seq.len() + 1);

        let mut oracle = DataflowOptimizer::new(&c, q.clone());
        oracle.set_audit_mode(AuditMode::Off);
        oracle.optimize();

        let mut victim = DataflowOptimizer::new(&c, q.clone());
        victim.set_audit_mode(AuditMode::Off);
        victim.set_durable_dir(&dir).unwrap();
        victim.optimize();
        for (i, &raw) in seq.iter().enumerate() {
            if i == ckpt_at {
                victim.checkpoint_durable().unwrap();
            }
            let deltas = deltas_for(&q, raw);
            oracle.reoptimize(&deltas);
            victim.reoptimize(&deltas);
        }
        if ckpt_at == seq.len() {
            victim.checkpoint_durable().unwrap();
        }
        drop(victim); // the crash

        let (mut rec, out) = DataflowOptimizer::recover(&c, q.clone(), &dir).unwrap();
        rec.set_audit_mode(AuditMode::Off);
        prop_assert_eq!(out.recovery.path, RecoveryPath::RestoredFromCheckpoint);
        prop_assert!(out.recovery.errors.is_empty(),
            "unexpected recovery errors: {:?}", out.recovery.errors);
        prop_assert!(out.cost.approx_eq(oracle.best_cost()),
            "recovered cost {:?} vs oracle {:?}", out.cost, oracle.best_cost());
        prop_assert_eq!(&out.plan, &oracle.best_plan(), "recovered BestPlan diverged");
        assert_sinks_match(&rec, &oracle, "after recovery");

        // Recovery is not a dead end: the next epoch stays in lockstep.
        let deltas = deltas_for(&q, resume);
        let got = rec.reoptimize(&deltas);
        let want = oracle.reoptimize(&deltas);
        prop_assert!(got.cost.approx_eq(want.cost),
            "post-recovery epoch: {:?} vs oracle {:?}", got.cost, want.cost);
        assert_sinks_match(&rec, &oracle, "after post-recovery epoch");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// A seeded bit flip anywhere in the checkpoint file must be
    /// detected (per-record CRC, bounds checks) and degrade to a
    /// from-scratch rebuild plus full WAL replay that still matches the
    /// oracle exactly — corruption costs time, never correctness.
    #[test]
    fn flipped_checkpoint_bits_degrade_to_an_exact_rebuild(
        gen in query_gen(4),
        seq in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..5),
        byte_sel in any::<u32>(),
        bit in 0u8..8,
    ) {
        let (c, q) = build(&gen);
        let dir = fresh_dir("flip");

        let mut oracle = DataflowOptimizer::new(&c, q.clone());
        oracle.set_audit_mode(AuditMode::Off);
        oracle.optimize();
        let mut victim = DataflowOptimizer::new(&c, q.clone());
        victim.set_audit_mode(AuditMode::Off);
        victim.set_durable_dir(&dir).unwrap();
        victim.optimize();
        for &raw in &seq {
            let deltas = deltas_for(&q, raw);
            oracle.reoptimize(&deltas);
            victim.reoptimize(&deltas);
        }
        victim.checkpoint_durable().unwrap();
        drop(victim);

        let path = dir.join("checkpoint.bin");
        let mut bytes = std::fs::read(&path).unwrap();
        let at = byte_sel as usize % bytes.len();
        bytes[at] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        let (rec, out) = DataflowOptimizer::recover(&c, q.clone(), &dir).unwrap();
        prop_assert_eq!(
            out.recovery.path, RecoveryPath::RebuiltAfterCorruptCheckpoint,
            "flip of bit {} at byte {}/{} went undetected", bit, at, bytes.len()
        );
        prop_assert!(!out.recovery.errors.is_empty(), "degradation must be reported");
        prop_assert!(out.cost.approx_eq(oracle.best_cost()),
            "rebuilt cost {:?} vs oracle {:?}", out.cost, oracle.best_cost());
        assert_sinks_match(&rec, &oracle, "after degraded rebuild");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Damage to the WAL must also never panic and never yield an
    /// inconsistent optimizer: whatever ladder rung recovery lands on,
    /// the full audit (from-scratch recompute + shadow engine replaying
    /// the recovered delta log) must pass. Acknowledged batches past
    /// the damage may be lost — that loss is *reported*, not silent.
    #[test]
    fn flipped_wal_bits_recover_to_a_consistent_state(
        gen in query_gen(4),
        seq in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..5),
        byte_sel in any::<u32>(),
        bit in 0u8..8,
        with_checkpoint in any::<bool>(),
    ) {
        let (c, q) = build(&gen);
        let dir = fresh_dir("walflip");
        let mut victim = DataflowOptimizer::new(&c, q.clone());
        victim.set_audit_mode(AuditMode::Off);
        victim.set_durable_dir(&dir).unwrap();
        victim.optimize();
        if with_checkpoint {
            victim.checkpoint_durable().unwrap();
        }
        for &raw in &seq {
            victim.reoptimize(&deltas_for(&q, raw));
        }
        drop(victim);

        let path = dir.join("wal.bin");
        let mut bytes = std::fs::read(&path).unwrap();
        let at = byte_sel as usize % bytes.len();
        bytes[at] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        let (mut rec, out) = DataflowOptimizer::recover(&c, q.clone(), &dir).unwrap();
        prop_assert_ne!(out.recovery.path, RecoveryPath::Committed,
            "damaged history cannot look like a clean first boot");
        prop_assert!(rec.audit().is_ok(),
            "recovered state failed the full audit after WAL damage at byte {at}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The acceptance scenario, pinned deterministically: warm a chain-5
/// optimizer through several epochs, checkpoint mid-sequence, keep
/// going, crash, recover — byte-identical `BestPlan` and sink multisets
/// versus the uninterrupted run, then lockstep resume.
#[test]
fn chain5_restart_resumes_from_checkpoint_and_wal_tail() {
    let (c, q) = chain5();
    let dir = fresh_dir("chain5");
    let batches = chain5_batches(&q);

    let mut oracle = DataflowOptimizer::new(&c, q.clone());
    oracle.set_audit_mode(AuditMode::Off);
    oracle.optimize();
    let mut victim = DataflowOptimizer::new(&c, q.clone());
    victim.set_audit_mode(AuditMode::Off);
    victim.set_durable_dir(&dir).unwrap();
    victim.optimize();
    for (i, batch) in batches.iter().enumerate() {
        oracle.reoptimize(batch);
        victim.reoptimize(batch);
        if i == 1 {
            victim.checkpoint_durable().unwrap();
        }
    }
    drop(victim);

    let (mut rec, out) = DataflowOptimizer::recover(&c, q.clone(), &dir).unwrap();
    rec.set_audit_mode(AuditMode::Off);
    assert_eq!(out.recovery.path, RecoveryPath::RestoredFromCheckpoint);
    assert!(out.recovery.errors.is_empty(), "{:?}", out.recovery.errors);
    assert!(out.cost.approx_eq(oracle.best_cost()));
    assert_eq!(out.plan, oracle.best_plan());
    assert_sinks_match(&rec, &oracle, "after chain5 recovery");

    let extra = deltas_for(&q, (1, 0, 6));
    let got = rec.reoptimize(&extra);
    let want = oracle.reoptimize(&extra);
    assert!(got.cost.approx_eq(want.cost));
    assert_sinks_match(&rec, &oracle, "after chain5 resume");
    let _ = std::fs::remove_dir_all(&dir);
}

/// An empty durable directory is a plain first boot, not a recovery.
#[test]
fn recover_on_an_empty_dir_is_a_plain_first_boot() {
    let (c, q) = chain5();
    let dir = fresh_dir("boot");
    let (_rec, out) = DataflowOptimizer::recover(&c, q.clone(), &dir).unwrap();
    assert_eq!(out.recovery.path, RecoveryPath::Committed);
    assert!(out.recovery.errors.is_empty());
    let mut fresh = DataflowOptimizer::new(&c, q);
    let want = fresh.optimize();
    assert!(out.cost.approx_eq(want.cost));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crashing before the first checkpoint still loses nothing: the WAL
/// alone replays every acknowledged batch onto a from-scratch build.
#[test]
fn crash_before_any_checkpoint_replays_the_whole_wal() {
    let (c, q) = chain5();
    let dir = fresh_dir("nockpt");
    let batches = chain5_batches(&q);

    let mut oracle = DataflowOptimizer::new(&c, q.clone());
    oracle.set_audit_mode(AuditMode::Off);
    oracle.optimize();
    let mut victim = DataflowOptimizer::new(&c, q.clone());
    victim.set_audit_mode(AuditMode::Off);
    victim.set_durable_dir(&dir).unwrap();
    victim.optimize();
    for batch in &batches {
        oracle.reoptimize(batch);
        victim.reoptimize(batch);
    }
    drop(victim);

    let (rec, out) = DataflowOptimizer::recover(&c, q.clone(), &dir).unwrap();
    assert_eq!(out.recovery.path, RecoveryPath::RebuiltFromScratch);
    assert!(out.cost.approx_eq(oracle.best_cost()));
    assert_eq!(out.plan, oracle.best_plan());
    assert_sinks_match(&rec, &oracle, "after WAL-only recovery");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn WAL tail — the image of a crash mid-append — is truncated
/// away on recovery; the batches before it replay normally and new
/// appends continue cleanly from the cut.
#[test]
fn torn_wal_tail_is_discarded_and_the_log_heals() {
    let (c, q) = chain5();
    let dir = fresh_dir("torn");
    let batches = chain5_batches(&q);

    let mut oracle = DataflowOptimizer::new(&c, q.clone());
    oracle.set_audit_mode(AuditMode::Off);
    oracle.optimize();
    let mut victim = DataflowOptimizer::new(&c, q.clone());
    victim.set_audit_mode(AuditMode::Off);
    victim.set_durable_dir(&dir).unwrap();
    victim.optimize();
    for (i, batch) in batches.iter().enumerate() {
        victim.reoptimize(batch);
        if i + 1 < batches.len() {
            // The last batch is the one that will be torn away.
            oracle.reoptimize(batch);
        }
    }
    drop(victim);

    // Tear the final record: chop a few bytes off the WAL.
    let path = dir.join("wal.bin");
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

    let (mut rec, out) = DataflowOptimizer::recover(&c, q.clone(), &dir).unwrap();
    rec.set_audit_mode(AuditMode::Off);
    assert_eq!(out.recovery.path, RecoveryPath::RebuiltFromScratch);
    assert!(out.cost.approx_eq(oracle.best_cost()));
    assert_sinks_match(&rec, &oracle, "after torn-tail recovery");

    // The healed log accepts new appends and a later recovery sees them.
    let extra = deltas_for(&q, (2, 4, 0));
    rec.reoptimize(&extra);
    oracle.reoptimize(&extra);
    drop(rec);
    let (rec2, out2) = DataflowOptimizer::recover(&c, q.clone(), &dir).unwrap();
    assert_eq!(out2.recovery.path, RecoveryPath::RebuiltFromScratch);
    assert_sinks_match(&rec2, &oracle, "after healed-log recovery");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash between "write `checkpoint.tmp`" and "rename over
/// `checkpoint.bin`": the stranded staging file must be swept on every
/// startup path, never read as state. Three crash points are staged —
/// a torn tmp next to a good checkpoint, a torn tmp with no checkpoint
/// at all (crash during the very first snapshot), and re-arming a live
/// directory — and in each the recovered optimizer matches the oracle
/// while the orphan is gone from disk.
#[test]
fn stale_checkpoint_tmp_files_are_swept_on_startup() {
    let (c, q) = chain5();
    let batches = chain5_batches(&q);
    let tmp_name = "checkpoint.tmp"; // what write_atomic stages

    let mut oracle = DataflowOptimizer::new(&c, q.clone());
    oracle.set_audit_mode(AuditMode::Off);
    oracle.optimize();
    for batch in &batches {
        oracle.reoptimize(batch);
    }

    // Crash point A: a later checkpoint died after staging its tmp but
    // before the rename — the old checkpoint.bin is still the truth.
    let dir = fresh_dir("tmp-sweep-a");
    let mut victim = DataflowOptimizer::new(&c, q.clone());
    victim.set_audit_mode(AuditMode::Off);
    victim.set_durable_dir(&dir).unwrap();
    victim.optimize();
    for (i, batch) in batches.iter().enumerate() {
        victim.reoptimize(batch);
        if i == 1 {
            victim.checkpoint_durable().unwrap();
        }
    }
    drop(victim);
    std::fs::write(dir.join(tmp_name), b"torn half-written snapshot").unwrap();
    let (rec, out) = DataflowOptimizer::recover(&c, q.clone(), &dir).unwrap();
    assert_eq!(out.recovery.path, RecoveryPath::RestoredFromCheckpoint);
    assert!(out.cost.approx_eq(oracle.best_cost()));
    assert_sinks_match(&rec, &oracle, "recovery next to a torn tmp");
    assert!(!dir.join(tmp_name).exists(), "orphaned tmp survived recover()");
    let _ = std::fs::remove_dir_all(&dir);

    // Crash point B: the very first checkpoint never completed — only
    // the WAL and the stranded tmp exist. Recovery replays the WAL and
    // must not mistake the tmp for a checkpoint.
    let dir = fresh_dir("tmp-sweep-b");
    let mut victim = DataflowOptimizer::new(&c, q.clone());
    victim.set_audit_mode(AuditMode::Off);
    victim.set_durable_dir(&dir).unwrap();
    victim.optimize();
    for batch in &batches {
        victim.reoptimize(batch);
    }
    drop(victim);
    // Stage a *valid* snapshot under the tmp name (cut by a twin in a
    // scratch dir) — sweeping must win even when the orphan would
    // parse, because the rename is what commits a checkpoint.
    let scratch = fresh_dir("tmp-sweep-b-scratch");
    let mut twin = DataflowOptimizer::new(&c, q.clone());
    twin.set_audit_mode(AuditMode::Off);
    twin.set_durable_dir(&scratch).unwrap();
    twin.optimize();
    for batch in &batches {
        twin.reoptimize(batch);
    }
    twin.checkpoint_durable().unwrap();
    drop(twin);
    std::fs::copy(scratch.join("checkpoint.bin"), dir.join(tmp_name)).unwrap();
    let _ = std::fs::remove_dir_all(&scratch);
    let (rec, out) = DataflowOptimizer::recover(&c, q.clone(), &dir).unwrap();
    assert_eq!(out.recovery.path, RecoveryPath::RebuiltFromScratch);
    assert!(out.cost.approx_eq(oracle.best_cost()));
    assert_sinks_match(&rec, &oracle, "WAL-only recovery next to a full tmp");
    assert!(!dir.join(tmp_name).exists(), "orphaned tmp survived recover()");
    let _ = std::fs::remove_dir_all(&dir);

    // Crash point C: arming durability on a directory holding an
    // orphan (the process died before ever reading it back) sweeps it
    // too — the sweep is a startup invariant, not a recover() detail.
    let dir = fresh_dir("tmp-sweep-c");
    std::fs::write(dir.join(tmp_name), b"stray").unwrap();
    let mut fresh = DataflowOptimizer::new(&c, q.clone());
    fresh.set_durable_dir(&dir).unwrap();
    assert!(!dir.join(tmp_name).exists(), "orphaned tmp survived set_durable_dir()");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cross-process restart: a child process (fresh interner) warms and
/// checkpoints a durable optimizer, then exits; the parent — whose
/// interner is deliberately shifted by decoy strings — recovers from
/// the same directory. The embedded symbol table must remap every
/// interned operator name, or the restored sinks would be garbage.
#[test]
fn durable_state_survives_a_process_boundary() {
    const ENV: &str = "REOPT_BRIDGE_CRASH_DIR";
    let (c, q) = chain5();
    let batches = chain5_batches(&q);

    if let Ok(dir) = std::env::var(ENV) {
        // Child: warm, checkpoint mid-sequence, log the rest, "crash".
        let mut victim = DataflowOptimizer::new(&c, q.clone());
        victim.set_audit_mode(AuditMode::Off);
        victim.set_durable_dir(&dir).unwrap();
        victim.optimize();
        for (i, batch) in batches.iter().enumerate() {
            victim.reoptimize(batch);
            if i == 2 {
                victim.checkpoint_durable().unwrap();
            }
        }
        std::process::exit(0);
    }

    // Parent: shift the interner so the child's symbol ids are wrong
    // here unless the checkpoint's table remaps them.
    for i in 0..37 {
        reopt_datalog::Sym::intern(&format!("parent-decoy-{i}"));
    }

    let dir = fresh_dir("xproc");
    let exe = std::env::current_exe().unwrap();
    let status = std::process::Command::new(exe)
        .args(["--exact", "durable_state_survives_a_process_boundary"])
        .env(ENV, &dir)
        .status()
        .unwrap();
    assert!(status.success(), "child process failed");

    let mut oracle = DataflowOptimizer::new(&c, q.clone());
    oracle.set_audit_mode(AuditMode::Off);
    oracle.optimize();
    for batch in &batches {
        oracle.reoptimize(batch);
    }

    let (mut rec, out) = DataflowOptimizer::recover(&c, q, &dir).unwrap();
    rec.set_audit_mode(AuditMode::Off);
    assert_eq!(out.recovery.path, RecoveryPath::RestoredFromCheckpoint);
    assert!(out.recovery.errors.is_empty(), "{:?}", out.recovery.errors);
    assert!(out.cost.approx_eq(oracle.best_cost()));
    assert_eq!(out.plan, oracle.best_plan());
    assert_sinks_match(&rec, &oracle, "across the process boundary");
    let _ = std::fs::remove_dir_all(&dir);
}
