//! Quickstart: optimize TPC-H Q5, perturb a selectivity estimate, and
//! re-optimize incrementally.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use reopt::core::{IncrementalOptimizer, PruningConfig};
use reopt::cost::ParamDelta;
use reopt::expr::EdgeId;
use reopt::workloads::{QueryId, TpchGen};

fn main() {
    // 1. Generate a small TPC-H instance; the catalog carries statistics
    //    (histograms) computed from the data.
    let (catalog, _db) = TpchGen::default().generate();

    // 2. Build Q5 (6-way join) and run initial optimization with all
    //    three pruning strategies of the paper enabled.
    let q5 = QueryId::Q5.build(&catalog);
    let mut optimizer = IncrementalOptimizer::new(&catalog, q5, PruningConfig::all());
    let initial = optimizer.optimize();
    println!("== initial optimization ==");
    println!("best cost: {}", initial.cost);
    println!("plan:\n{}", initial.plan);
    println!(
        "state: {}/{} groups live, {}/{} alternatives live",
        initial.state.total_groups - initial.state.pruned_groups,
        initial.state.total_groups,
        initial.state.total_alts - initial.state.pruned_alts,
        initial.state.total_alts,
    );

    // 3. Runtime feedback arrives: the LINEITEM ⋈ ORDERS join produces
    //    4x the estimated rows. Re-optimize incrementally — only the
    //    affected cone of the memo is recomputed.
    let out = optimizer.reoptimize(&[ParamDelta::EdgeSelectivity(EdgeId(3), 4.0)]);
    println!("\n== after ×4 selectivity on LINEITEM ⋈ ORDERS ==");
    println!("best cost: {}", out.cost);
    println!(
        "touched {} of {} groups ({:.1}%), {} of {} alternatives ({:.1}%)",
        out.run.touched_groups,
        out.state.total_groups,
        100.0 * out.run.group_update_ratio(out.state.total_groups),
        out.run.touched_alts,
        out.state.total_alts,
        100.0 * out.run.alt_update_ratio(out.state.total_alts),
    );
    if out.plan.fingerprint() != initial.plan.fingerprint() {
        println!("the plan changed:\n{}", out.plan);
    } else {
        println!("the plan is unchanged (still optimal).");
    }

    // 4. Reverting the estimate converges back with minimal work.
    let back = optimizer.reoptimize(&[ParamDelta::EdgeSelectivity(EdgeId(3), 1.0)]);
    println!("\n== after reverting the estimate ==");
    println!(
        "best cost: {} (initial was {}), touched {} groups",
        back.cost, initial.cost, back.run.touched_groups
    );
}
