//! Repeated OLAP execution (the paper's second target domain): a
//! prepared statement executed over successive skewed data partitions,
//! re-optimized after every execution from observed statistics.
//!
//! ```sh
//! cargo run --release --example prepared_statement
//! ```

use reopt::aqp::run_partitions;
use reopt::core::PruningConfig;
use reopt::workloads::{QueryId, TpchGen};

fn main() {
    let gen = TpchGen {
        sf: 0.002,
        zipf_theta: 0.5, // the skewed TPC-D setting of paper §5.2.2
        seed: 13,
        buckets: 32,
    };
    let (catalog, db) = gen.generate();
    let q5 = QueryId::Q5.build(&catalog);
    let partitions = gen.partition(&db, &catalog, 8);
    println!("executing Q5 over {} skewed partitions…\n", partitions.len());
    let reports = run_partitions(&catalog, &q5, &partitions, PruningConfig::all(), 0.5);
    println!(
        "{:<6} {:>12} {:>12} {:>9} {:>12} {:>8}",
        "round", "inc-reopt", "volcano", "speedup", "touched", "plan?"
    );
    for r in &reports {
        println!(
            "{:<6} {:>10.1}us {:>10.1}us {:>8.1}x {:>12} {:>8}",
            r.round + 1,
            r.incremental_reopt.as_secs_f64() * 1e6,
            r.volcano_reopt.as_secs_f64() * 1e6,
            r.volcano_reopt.as_secs_f64() / r.incremental_reopt.as_secs_f64().max(1e-12),
            format!("{}g/{}a", r.run.touched_groups, r.run.touched_alts),
            if r.plan_changed { "changed" } else { "kept" },
        );
    }
    let total_inc: f64 = reports
        .iter()
        .map(|r| r.incremental_reopt.as_secs_f64())
        .sum();
    let total_vol: f64 = reports.iter().map(|r| r.volcano_reopt.as_secs_f64()).sum();
    println!(
        "\ntotal re-optimization time: incremental {:.1}us vs from-scratch {:.1}us ({:.1}x)",
        total_inc * 1e6,
        total_vol * 1e6,
        total_vol / total_inc.max(1e-12)
    );
}
