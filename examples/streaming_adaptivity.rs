//! Adaptive stream processing (the paper's first target domain): the
//! Linear Road `SegTollS` query executed slice-at-a-time with
//! incremental re-optimization at every split point (paper §5.4).
//!
//! ```sh
//! cargo run --release --example streaming_adaptivity
//! ```

use reopt::aqp::{AqpConfig, AqpDriver};
use reopt::catalog::Catalog;
use reopt::workloads::{seg_toll_query, LinearRoadGen};

fn main() {
    let mut catalog = Catalog::new();
    let mut gen = LinearRoadGen::new(42);
    gen.rate = 40.0;
    gen.n_cars = 400;
    gen.n_segments = 25;
    gen.register(&mut catalog);
    let query = seg_toll_query(&catalog);
    println!(
        "SegTollS: {} windowed self-join leaves, {} join edges\n",
        query.n_leaves(),
        query.edges.len()
    );
    let mut driver = AqpDriver::new(&catalog, query, AqpConfig::default());
    println!("initial plan:\n{}", driver.current_plan());
    println!(
        "{:<6} {:>8} {:>10} {:>10} {:>9} {:>8}",
        "slice", "windows", "exec(ms)", "reopt(us)", "touched", "plan?"
    );
    let slice_dur = 5.0;
    let mut changes = 0;
    for i in 0..24 {
        let tuples = gen.slice(i as f64 * slice_dur, slice_dur);
        let r = driver.run_slice(&tuples);
        if r.plan_changed {
            changes += 1;
        }
        println!(
            "{:<6} {:>8} {:>10.2} {:>10.1} {:>9} {:>8}",
            r.slice,
            r.window_rows,
            r.exec_time.as_secs_f64() * 1e3,
            r.reopt_time.as_secs_f64() * 1e6,
            r.run.touched_groups,
            if r.plan_changed { "CHANGED" } else { "-" },
        );
    }
    println!("\n{changes} plan changes over 24 slices; final plan:");
    println!("{}", driver.current_plan());
}
