//! The substrate on its own: incremental maintenance of a recursive
//! view (transitive closure) and of a min-aggregate with next-best
//! recovery — the two mechanics §4 of the paper builds the incremental
//! optimizer from.
//!
//! ```sh
//! cargo run --release --example datalog_view_maintenance
//! ```

use reopt::datalog::value::ints;
use reopt::datalog::{AggKind, Dataflow, Distinct, GroupAgg, HashJoin, Map, Union};

fn main() {
    // path(x,y) :- edge(x,y).
    // path(x,z) :- path(x,y), edge(y,z).
    let mut df = Dataflow::new();
    let edge = df.add_input("edge");
    let union = df.add_op_unwired(Union::new(2));
    df.connect(edge, union, 0);
    let path = df.add_op(Distinct::new(), &[union]);
    let join = df.add_op_unwired(HashJoin::new(vec![1], vec![0]));
    df.connect(path, join, 0);
    df.connect(edge, join, 1);
    let proj = df.add_op(Map::project(vec![0, 3]), &[join]);
    df.connect(proj, union, 1);
    let paths = df.add_sink(path);

    println!("== recursive view maintenance: transitive closure ==");
    for (a, b) in [(1, 2), (2, 3), (3, 4), (1, 3)] {
        df.insert(edge, ints(&[a, b]));
    }
    let stats = df.run().unwrap();
    println!(
        "base edges inserted: {} paths derived ({} deltas processed)",
        df.sink(paths).len(),
        stats.deltas_processed
    );
    // Delete edge 2->3: derivations through it retract, but 1->3 and
    // 1->4 survive via the 1->3 edge (counting semantics of [14]).
    df.delete(edge, ints(&[2, 3]));
    let stats = df.run().unwrap();
    println!(
        "after deleting edge (2,3): {} paths remain ({} deltas)",
        df.sink(paths).len(),
        stats.deltas_processed
    );
    for t in df.sink(paths).sorted() {
        println!("  path{t:?}");
    }

    // Min-aggregate with next-best recovery — §4.1's BestCost semantics.
    println!("\n== min view maintenance with next-best recovery ==");
    let mut df = Dataflow::new();
    let plan_cost = df.add_input("PlanCost");
    let best = df.add_op(GroupAgg::new(vec![0], 1, AggKind::Min), &[plan_cost]);
    let best_sink = df.add_sink(best);
    for (expr, cost) in [(1, 30), (1, 10), (1, 20)] {
        df.insert(plan_cost, ints(&[expr, cost]));
    }
    df.run().unwrap();
    println!("BestCost after inserts: {:?}", df.sink(best_sink).sorted());
    // Deleting the minimum: the aggregate recovers the second-best from
    // its retained queue and emits an update delta.
    df.delete(plan_cost, ints(&[1, 10]));
    df.run().unwrap();
    println!(
        "BestCost after deleting the minimum: {:?}",
        df.sink(best_sink).sorted()
    );
}
