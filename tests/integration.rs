//! Cross-crate integration tests: the full pipeline from workload
//! generation through optimization to execution, exercised end to end.

use reopt::baselines::{optimize_system_r, optimize_volcano};
use reopt::core::{IncrementalOptimizer, PruningConfig};
use reopt::cost::{CostContext, ParamDelta};
use reopt::exec::Executor;
use reopt::expr::{EdgeId, JoinGraph, LeafId};
use reopt::workloads::{QueryId, TpchGen};

fn all_query_ids() -> [QueryId; 9] {
    [
        QueryId::Q1,
        QueryId::Q3,
        QueryId::Q3S,
        QueryId::Q5,
        QueryId::Q5S,
        QueryId::Q6,
        QueryId::Q10,
        QueryId::Q8Join,
        QueryId::Q8JoinS,
    ]
}

#[test]
fn all_optimizers_agree_on_the_full_workload() {
    let (catalog, _db) = TpchGen::default().generate();
    for qid in all_query_ids() {
        let q = qid.build(&catalog);
        let g = JoinGraph::new(&q);
        let mut ctx = CostContext::new(&catalog, &q);
        let dp = optimize_system_r(&q, &g, &mut ctx);
        let vol = optimize_volcano(&q, &g, &mut ctx);
        assert!(
            dp.cost.approx_eq(vol.cost),
            "{}: dp={:?} volcano={:?}",
            qid.name(),
            dp.cost,
            vol.cost
        );
        for cfg in [
            PruningConfig::evita_raced(),
            PruningConfig::aggsel_refcount(),
            PruningConfig::all(),
        ] {
            let mut opt = IncrementalOptimizer::new(&catalog, q.clone(), cfg);
            let out = opt.optimize();
            assert!(
                out.cost.approx_eq(dp.cost),
                "{} under {}: {:?} vs dp {:?}",
                qid.name(),
                cfg.label(),
                out.cost,
                dp.cost
            );
            opt.check_invariants()
                .unwrap_or_else(|e| panic!("{} {}: {e}", qid.name(), cfg.label()));
        }
    }
}

#[test]
fn different_optimizers_plans_produce_identical_results() {
    // Execute Q3S with every optimizer's plan over real data: whatever
    // the join order, the result multiset cardinality must agree.
    let (catalog, db) = TpchGen::default().generate();
    for qid in [QueryId::Q3S, QueryId::Q10] {
        let q = qid.build(&catalog);
        let g = JoinGraph::new(&q);
        let mut ctx = CostContext::new(&catalog, &q);
        let plans = [optimize_system_r(&q, &g, &mut ctx).plan,
            optimize_volcano(&q, &g, &mut ctx).plan,
            {
                let mut opt =
                    IncrementalOptimizer::new(&catalog, q.clone(), PruningConfig::all());
                opt.optimize().plan
            }];
        let counts: Vec<usize> = plans
            .iter()
            .map(|p| {
                let mut exec = Executor::from_database(&q, &catalog, &db);
                exec.run(p).0.len()
            })
            .collect();
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "{}: result counts diverge across plans: {counts:?}",
            qid.name()
        );
    }
}

#[test]
fn incremental_sequence_tracks_fresh_optimization_on_q5() {
    let (catalog, _db) = TpchGen::default().generate();
    let q = QueryId::Q5.build(&catalog);
    let g = JoinGraph::new(&q);
    let mut opt = IncrementalOptimizer::new(&catalog, q.clone(), PruningConfig::all());
    opt.optimize();
    // A realistic monitoring sequence: edge selectivities and scan costs
    // drifting upward as load increases.
    let sequence: Vec<Vec<ParamDelta>> = vec![
        vec![ParamDelta::EdgeSelectivity(EdgeId(3), 2.0)],
        vec![ParamDelta::LeafScanCost(LeafId(3), 3.0)],
        vec![
            ParamDelta::EdgeSelectivity(EdgeId(3), 4.0),
            ParamDelta::LeafCardinality(LeafId(4), 2.0),
        ],
        vec![ParamDelta::EdgeSelectivity(EdgeId(1), 6.0)],
    ];
    let mut cumulative: Vec<ParamDelta> = Vec::new();
    for batch in sequence {
        cumulative.extend(batch.iter().copied());
        let out = opt.reoptimize(&batch);
        let mut ctx = CostContext::new(&catalog, &q);
        ctx.apply(&cumulative);
        let fresh = optimize_system_r(&q, &g, &mut ctx);
        assert!(
            out.cost.approx_eq(fresh.cost),
            "after {cumulative:?}: incremental {:?} vs fresh {:?}",
            out.cost,
            fresh.cost
        );
        opt.check_invariants().unwrap();
    }
}

#[test]
fn incremental_reoptimization_is_faster_than_from_scratch() {
    // The headline claim, measured coarsely (debug builds still show the
    // an order-of-magnitude gap on repeated updates).
    let (catalog, _db) = TpchGen::default().generate();
    let q = QueryId::Q5.build(&catalog);
    let g = JoinGraph::new(&q);
    let mut opt = IncrementalOptimizer::new(&catalog, q.clone(), PruningConfig::all());
    opt.optimize();
    let rounds = 40;
    let t0 = std::time::Instant::now();
    for i in 0..rounds {
        let f = if i % 2 == 0 { 2.0 } else { 1.0 };
        opt.reoptimize(&[ParamDelta::LeafScanCost(LeafId(3), f)]);
    }
    let incremental = t0.elapsed();
    let mut ctx = CostContext::new(&catalog, &q);
    let t1 = std::time::Instant::now();
    for i in 0..rounds {
        let f = if i % 2 == 0 { 2.0 } else { 1.0 };
        ctx.apply(&[ParamDelta::LeafScanCost(LeafId(3), f)]);
        let _ = optimize_volcano(&q, &g, &mut ctx);
    }
    let scratch = t1.elapsed();
    assert!(
        incremental < scratch,
        "incremental {incremental:?} not faster than from-scratch {scratch:?}"
    );
}

#[test]
fn zipf_skew_changes_plans() {
    // The §5.2.2 premise: skewed data leads to different statistics and
    // (typically) different optimal plans than uniform data.
    let uniform = TpchGen {
        zipf_theta: 0.0,
        ..Default::default()
    };
    let skewed = TpchGen {
        zipf_theta: 1.2,
        ..Default::default()
    };
    let cost_of = |gen: &TpchGen| {
        let (catalog, _) = gen.generate();
        let q = QueryId::Q5.build(&catalog);
        let g = JoinGraph::new(&q);
        let mut ctx = CostContext::new(&catalog, &q);
        optimize_system_r(&q, &g, &mut ctx).cost
    };
    let u = cost_of(&uniform);
    let s = cost_of(&skewed);
    assert!(
        !u.approx_eq(s),
        "skew had no effect on plan costs: {u:?} vs {s:?}"
    );
}
