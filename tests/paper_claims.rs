//! Assertions encoding the paper's qualitative claims, checked on every
//! run of the test suite (the quantitative shapes live in the benchmark
//! harness and EXPERIMENTS.md).

use reopt::core::{IncrementalOptimizer, PruningConfig};
use reopt::cost::ParamDelta;
use reopt::expr::EdgeId;
use reopt::workloads::{QueryId, TpchGen};

#[test]
fn claim_evita_raced_never_prunes_plan_table_entries() {
    // Fig 4(b): "[Evita Raced] never prunes plan table entries".
    let (catalog, _db) = TpchGen::default().generate();
    for qid in QueryId::figure4_suite() {
        let q = qid.build(&catalog);
        let mut opt = IncrementalOptimizer::new(&catalog, q, PruningConfig::evita_raced());
        let out = opt.optimize();
        assert_eq!(out.state.pruned_groups, 0, "{}", qid.name());
    }
}

#[test]
fn claim_declarative_prunes_a_large_fraction_of_plan_table_entries() {
    // Fig 4(b): "pruning of approximately 35-80% of the plan table
    // entries".
    let (catalog, _db) = TpchGen::default().generate();
    for qid in QueryId::figure4_suite() {
        let q = qid.build(&catalog);
        let mut opt = IncrementalOptimizer::new(&catalog, q, PruningConfig::all());
        let out = opt.optimize();
        let ratio = out.state.group_pruning_ratio();
        assert!(
            ratio > 0.35,
            "{}: plan-table pruning ratio only {ratio:.2}",
            qid.name()
        );
    }
}

#[test]
fn claim_declarative_prunes_more_alternatives_than_evita_raced() {
    // Fig 4(c): "[our declarative implementation] exceeds the pruning
    // ratios obtained by the Evita Raced strategies".
    let (catalog, _db) = TpchGen::default().generate();
    for qid in QueryId::figure4_suite() {
        let q = qid.build(&catalog);
        let mut er = IncrementalOptimizer::new(&catalog, q.clone(), PruningConfig::evita_raced());
        let er_ratio = er.optimize().state.alt_pruning_ratio();
        let mut all = IncrementalOptimizer::new(&catalog, q, PruningConfig::all());
        let all_ratio = all.optimize().state.alt_pruning_ratio();
        assert!(
            all_ratio >= er_ratio,
            "{}: All {all_ratio:.3} < Evita-Raced {er_ratio:.3}",
            qid.name()
        );
    }
}

#[test]
fn claim_incremental_updates_recompute_a_small_portion_of_the_space() {
    // §5.2.1: "we recompute only a small portion of the search space".
    let (catalog, _db) = TpchGen::default().generate();
    let q = QueryId::Q5.build(&catalog);
    for edge in 0..5 {
        let mut opt = IncrementalOptimizer::new(&catalog, q.clone(), PruningConfig::all());
        opt.optimize();
        let out = opt.reoptimize(&[ParamDelta::EdgeSelectivity(EdgeId(edge), 0.5)]);
        let ratio = out.run.alt_update_ratio(out.state.total_alts);
        assert!(
            ratio < 0.25,
            "edge {edge}: updated {:.1}% of alternatives",
            ratio * 100.0
        );
    }
}

#[test]
fn claim_larger_expressions_are_cheaper_to_update() {
    // §5.2.1: "changes to smaller subplans will take longer to
    // re-optimize, and changes to larger subplans will take less time
    // (due to the number of recursive propagation steps involved)".
    // Edge 0 (REGION⋈NATION) sits at the bottom of Q5's chain; edge 4
    // (SUPPLIER⋈D) completes near the top.
    let (catalog, _db) = TpchGen::default().generate();
    let q = QueryId::Q5.build(&catalog);
    let work_for = |edge: u32| {
        let mut opt = IncrementalOptimizer::new(&catalog, q.clone(), PruningConfig::all());
        opt.optimize();
        let out = opt.reoptimize(&[ParamDelta::EdgeSelectivity(EdgeId(edge), 0.5)]);
        out.run.touched_alts
    };
    let bottom = work_for(0);
    let top = work_for(4);
    assert!(
        top <= bottom,
        "top-level change touched more ({top}) than bottom-level ({bottom})"
    );
}

#[test]
fn claim_state_converges_so_repeated_reoptimization_is_free() {
    // Fig 9: "the incremental re-optimization time drops off rapidly,
    // going to nearly zero … the system has essentially converged".
    let (catalog, _db) = TpchGen::default().generate();
    let q = QueryId::Q5.build(&catalog);
    let mut opt = IncrementalOptimizer::new(&catalog, q, PruningConfig::all());
    opt.optimize();
    opt.reoptimize(&[ParamDelta::EdgeSelectivity(EdgeId(2), 3.0)]);
    // Statistics stopped changing: successive re-optimizations do no
    // propagation work at all.
    for _ in 0..3 {
        let out = opt.reoptimize(&[ParamDelta::EdgeSelectivity(EdgeId(2), 3.0)]);
        assert_eq!(out.run.queue_pops, 0);
        assert_eq!(out.run.touched_alts, 0);
    }
}

#[test]
fn claim_optimal_plan_is_unchanged_by_pruning() {
    // §3.2: "the optimal plan computed by the query optimizer is
    // unchanged, but more tuples in SearchSpace and PlanCost are
    // pruned."
    let (catalog, _db) = TpchGen::default().generate();
    for qid in [QueryId::Q5, QueryId::Q10, QueryId::Q8JoinS] {
        let q = qid.build(&catalog);
        let mut costs = Vec::new();
        for cfg in [
            PruningConfig::none(),
            PruningConfig::aggsel(),
            PruningConfig::aggsel_refcount(),
            PruningConfig::aggsel_bounding(),
            PruningConfig::all(),
        ] {
            let mut opt = IncrementalOptimizer::new(&catalog, q.clone(), cfg);
            costs.push(opt.optimize().cost);
        }
        assert!(
            costs.windows(2).all(|w| w[0].approx_eq(w[1])),
            "{}: costs diverge across pruning configs: {costs:?}",
            qid.name()
        );
    }
}

#[test]
fn claim_total_state_stays_bounded() {
    // §5.3: "even for the largest query (Q8Join), the total optimizer
    // state was under 100MB" — our dense-array state is far smaller;
    // assert a conservative bound scaled to our representation.
    let (catalog, _db) = TpchGen::default().generate();
    let q = QueryId::Q8Join.build(&catalog);
    let opt = IncrementalOptimizer::new(&catalog, q, PruningConfig::all());
    let groups = opt.memo().n_groups();
    let alts = opt.memo().n_alts();
    // Group + alt state structs are tens of bytes each.
    let approx_bytes = groups * 128 + alts * 64;
    assert!(
        approx_bytes < 100 * 1024 * 1024,
        "state estimate {approx_bytes} bytes exceeds 100MB"
    );
}
