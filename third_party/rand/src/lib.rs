//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so this crate provides the
//! subset of the `rand 0.8` API this workspace uses: the [`Rng`] /
//! [`SeedableRng`] traits, integer/float sampling, and a deterministic
//! [`rngs::StdRng`]. The generator is SplitMix64 — statistically more than
//! adequate for workload generation and property tests, and fully
//! reproducible from a `u64` seed.

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `RngCore` (the stand-in for
/// rand's `Standard` distribution).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types `gen_range` can sample uniformly (stand-in for
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi]` if `inclusive`, else `[lo, hi)`.
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "empty range in gen_range");
                    let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
                } else {
                    assert!(lo < hi, "empty range in gen_range");
                    let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        }
    )*}
}
impl_sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Ranges a uniform value can be drawn from (stand-in for
/// `rand::distributions::uniform::SampleRange`). A single generic impl per
/// range shape, exactly like real rand, so integer-literal ranges unify
/// with the surrounding expression's type.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// The user-facing random-value API, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (stand-in for `rand::SeedableRng`; only the
/// `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
            let u = r.gen_range(0usize..10);
            assert!(u < 10);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }
}
