//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so this crate implements the
//! subset of proptest this workspace's property suites use: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map`, range and tuple strategies,
//! `any::<T>()`, `proptest::collection::vec`, the `proptest!` macro, and the
//! `prop_assert*` macros. Generation is deterministic (seeded per test from
//! the test's path) and there is **no shrinking** — a failing case reports
//! its case number so it can be replayed, which is sufficient for CI.

use std::ops::{Range, RangeInclusive};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; unused (no shrinking in the stand-in).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Failure value a property body can return with `?` (stand-in for
/// `proptest::test_runner::TestCaseError`).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    reason: String,
}

impl TestCaseError {
    pub fn fail<S: ToString>(reason: S) -> Self {
        TestCaseError {
            reason: reason.to_string(),
        }
    }

    /// Alias kept for compatibility with `TestCaseError::Reject` usage.
    pub fn reject<S: ToString>(reason: S) -> Self {
        Self::fail(reason)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.reason)
    }
}

/// Deterministic generator driving value generation, backed by the in-tree
/// `rand` stand-in (same dependency direction as real proptest → rand).
#[derive(Clone, Debug)]
pub struct TestRng {
    rng: rand::rngs::StdRng,
}

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        use rand::SeedableRng;
        TestRng {
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// Seeds deterministically from a test's module path + name. If the
    /// `REOPT_PROPTEST_SEED` environment variable is set, its value
    /// (a u64, or any string — hashed) perturbs the per-test seed: the
    /// default run is fully reproducible, and CI adds one extra pass
    /// with a per-run seed so fresh case vectors are explored over time
    /// without giving up replayability (re-export the same value to
    /// replay).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let fold = |mut h: u64, bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h
        };
        h = fold(h, name.as_bytes());
        if let Ok(seed) = std::env::var("REOPT_PROPTEST_SEED") {
            h = match seed.parse::<u64>() {
                Ok(n) => h ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15),
                Err(_) => fold(h, seed.as_bytes()),
            };
        }
        Self::seed_from_u64(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.rng)
    }

    pub fn next_f64(&mut self) -> f64 {
        rand::Rng::gen::<f64>(&mut self.rng)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "TestRng::below(0)");
        self.next_u64() % n
    }
}

/// A generator of random values (the stand-in drops shrinking, so a
/// strategy is just a seeded generator).
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive values: {}", self.reason);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                let v = rng.below(span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi as i128 - lo as i128 + 1;
                if span > u64::MAX as i128 {
                    // Full 64-bit domain: the span doesn't fit in u64.
                    return rng.next_u64() as $t;
                }
                let v = rng.below(span as u64) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*}
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    }
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (stand-in for
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// Strategy produced by [`any`]: the full domain of `T`.
#[derive(Clone, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;

            fn arbitrary() -> Any<$t> {
                Any { _marker: std::marker::PhantomData }
            }
        }
    )*}
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;

    fn arbitrary() -> Any<bool> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

impl Strategy for Any<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

impl Arbitrary for f64 {
    type Strategy = Any<f64>;

    fn arbitrary() -> Any<f64> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: a fixed size or a size range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
            };
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Fails the current property case (stand-in: panics like `assert!`, with
/// the case number prepended by the `proptest!` harness).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// The property-test harness macro. Supported form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///     #[test]
///     fn my_prop(x in 0u8..4, v in proptest::collection::vec(any::<bool>(), 3)) {
///         prop_assert!(...);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                let result = {
                    $(let $pat = $crate::Strategy::new_value(&($strat), &mut rng);)+
                    // Real proptest bodies may use `?` with `TestCaseError`;
                    // wrap the block so both panics and `Err` returns fail
                    // the test with the case number attached.
                    let run = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run))
                };
                match result {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        panic!(
                            "proptest stand-in: property `{}` failed at case {} of {}: {}",
                            stringify!($name), case, cfg.cases, e
                        );
                    }
                    Err(e) => {
                        eprintln!(
                            "proptest stand-in: property `{}` panicked at case {} of {}",
                            stringify!($name), case, cfg.cases
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_vecs(n in 2usize..=6, v in crate::collection::vec(1u8..=5, 4)) {
            prop_assert!((2..=6).contains(&n));
            prop_assert_eq!(v.len(), 4);
            prop_assert!(v.iter().all(|&x| (1..=5).contains(&x)));
        }

        #[test]
        fn flat_map_composes(v in (1usize..=4).prop_flat_map(|n| crate::collection::vec(any::<bool>(), n))) {
            prop_assert!(!v.is_empty() && v.len() <= 4);
        }
    }
}
