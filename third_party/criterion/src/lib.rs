//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no registry access, so this crate implements the
//! subset of criterion's API the workspace's benches use: `Criterion`,
//! benchmark groups with `sample_size` / `measurement_time` / `warm_up_time`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Timing is a simple
//! median-of-samples wall-clock measurement printed to stdout — adequate for
//! relative comparisons; swap in real criterion when network access exists.

//! Harness flags (environment variables, read at run time):
//! - `REOPT_BENCH_SMOKE=1` — force a 1-sample, minimal-budget config on
//!   every group regardless of what the bench requests (CI smoke runs).
//! - `REOPT_BENCH_JSON=<path>` — additionally write machine-readable
//!   results (`{"name": ..., "median_ns": ...}` per bench) to `<path>`
//!   when the binary exits, so perf baselines can be committed and
//!   compared across PRs.
//! - `REOPT_BENCH_JSON_MERGE=1` — instead of overwriting, fold the
//!   report into any entries already present at the path (same-name
//!   entries are replaced). Lets several bench binaries — separate
//!   processes — accumulate one combined baseline file.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation; accepted and ignored by the stand-in.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Debug)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Settings {
    /// The effective settings for a run: `REOPT_BENCH_SMOKE=1` clamps
    /// every group to a single sample with a minimal time budget, no
    /// matter what the bench configured.
    fn effective(&self) -> Settings {
        if smoke_mode() {
            Settings {
                sample_size: 1,
                measurement_time: Duration::from_millis(20),
                warm_up_time: Duration::from_millis(2),
            }
        } else {
            self.clone()
        }
    }
}

fn smoke_mode() -> bool {
    std::env::var_os("REOPT_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty())
}

/// Results collected for the optional JSON report.
static RESULTS: Mutex<Vec<(String, u128)>> = Mutex::new(Vec::new());

/// Parses `{"name": ..., "median_ns": ...}` lines out of an existing
/// report (the merge path tolerates a missing or foreign file).
fn parse_existing(path: &std::ffi::OsStr) -> Vec<(String, u128)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name_at) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[name_at + 9..];
        let Some(close) = rest.find('"') else { continue };
        let name = rest[..close].to_string();
        let Some(med_at) = line.find("\"median_ns\": ") else {
            continue;
        };
        let digits: String = line[med_at + 13..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        if let Ok(ns) = digits.parse() {
            out.push((name, ns));
        }
    }
    out
}

/// Writes collected results to `$REOPT_BENCH_JSON` if set. Called by
/// `criterion_main!` after all groups have run. With
/// `REOPT_BENCH_JSON_MERGE` set, entries already in the file survive
/// unless this run re-measured them.
pub fn flush_json_report() {
    let Some(path) = std::env::var_os("REOPT_BENCH_JSON") else {
        return;
    };
    let fresh = RESULTS.lock().unwrap();
    let mut results: Vec<(String, u128)> = Vec::new();
    if std::env::var_os("REOPT_BENCH_JSON_MERGE").is_some_and(|v| v != "0" && !v.is_empty()) {
        results.extend(
            parse_existing(&path)
                .into_iter()
                .filter(|(name, _)| !fresh.iter().any(|(n, _)| n == name)),
        );
    }
    results.extend(fresh.iter().cloned());
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke_mode() { "smoke" } else { "full" }
    ));
    out.push_str("  \"results\": [\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"median_ns\": {ns}}}{comma}\n"
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("failed to write bench report {path:?}: {e}");
    } else {
        println!("bench report written to {path:?}");
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher<'a> {
    settings: &'a Settings,
    /// Median per-iteration time of the measured samples.
    result: Option<Duration>,
}

impl Bencher<'_> {
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up: run until the warm-up budget is spent.
        let warm_deadline = Instant::now() + self.settings.warm_up_time;
        let iters_per_sample;
        loop {
            let t = Instant::now();
            black_box(f());
            let dt = t.elapsed().max(Duration::from_nanos(1));
            if Instant::now() >= warm_deadline {
                // Aim each sample at ~1/sample_size of the measurement budget.
                let per_sample =
                    self.settings.measurement_time / self.settings.sample_size as u32;
                iters_per_sample =
                    (per_sample.as_nanos() / dt.as_nanos()).clamp(1, 1_000_000) as u64;
                break;
            }
        }
        let mut samples = Vec::with_capacity(self.settings.sample_size);
        let deadline = Instant::now() + self.settings.measurement_time;
        for _ in 0..self.settings.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(t.elapsed() / iters_per_sample as u32);
            if Instant::now() >= deadline {
                break;
            }
        }
        samples.sort();
        self.result = Some(samples[samples.len() / 2]);
    }

    /// Like [`Bencher::iter`], but the values the closure returns are
    /// dropped *outside* the timed region (upstream criterion's API for
    /// benchmarks whose deallocation cost should not pollute the
    /// measurement — e.g. latency-to-ready of a freshly built state).
    pub fn iter_with_large_drop<R>(&mut self, mut f: impl FnMut() -> R) {
        let warm_deadline = Instant::now() + self.settings.warm_up_time;
        let iters_per_sample;
        loop {
            let t = Instant::now();
            let r = black_box(f());
            let dt = t.elapsed().max(Duration::from_nanos(1));
            drop(r);
            if Instant::now() >= warm_deadline {
                let per_sample =
                    self.settings.measurement_time / self.settings.sample_size as u32;
                iters_per_sample =
                    (per_sample.as_nanos() / dt.as_nanos()).clamp(1, 1_000_000) as u64;
                break;
            }
        }
        let mut samples = Vec::with_capacity(self.settings.sample_size);
        let mut kept: Vec<R> = Vec::with_capacity(iters_per_sample as usize);
        let deadline = Instant::now() + self.settings.measurement_time;
        for _ in 0..self.settings.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                kept.push(black_box(f()));
            }
            samples.push(t.elapsed() / iters_per_sample as u32);
            kept.clear();
            if Instant::now() >= deadline {
                break;
            }
        }
        samples.sort();
        self.result = Some(samples[samples.len() / 2]);
    }
}

/// A named collection of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.settings.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(id.into(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.into(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let settings = self.settings.effective();
        let mut b = Bencher {
            settings: &settings,
            result: None,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), b.result);
    }

    pub fn finish(&mut self) {}
}

fn report(name: &str, result: Option<Duration>) {
    match result {
        Some(median) => {
            println!("{name:<60} median {median:>12.2?}");
            RESULTS
                .lock()
                .unwrap()
                .push((name.to_string(), median.as_nanos()));
        }
        None => println!("{name:<60} (no measurement: closure never called iter)"),
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: Settings::default(),
            _criterion: self,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let settings = Settings::default().effective();
        let mut b = Bencher {
            settings: &settings,
            result: None,
        };
        f(&mut b);
        report(&id.into().id, b.result);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` / `cargo bench -- <filter>` pass flags the
            // stand-in doesn't interpret; run everything regardless.
            $( $group(); )+
            $crate::flush_json_report();
        }
    };
}
